//! Fault-layer integration tests: the additivity guarantee (faults
//! disabled ⇒ bit-identical results) and a seeded chaos suite driving
//! the controller through stuck-at blocks, transient write failures,
//! and endurance exhaustion at many operating points while checking
//! the fault-accounting invariants.

use mellow_writes::core::WritePolicy;
use mellow_writes::engine::{DetRng, Duration, SimTime};
use mellow_writes::memctrl::{Controller, MemConfig};
use mellow_writes::nvm::{CancelWear, EnduranceModel, ExpoFactor};
use mellow_writes::sim::Experiment;
use mellow_writes::workloads::WorkloadSpec;

const MEM_CYCLE_PS: u64 = 2500;

/// The scaled-down experiment used by the additivity checks (mirrors
/// `tests/end_to_end.rs`).
fn scaled(workload: &str, policy: WritePolicy, seed: u64) -> Experiment {
    let mut spec = WorkloadSpec::by_name(workload).expect("preset exists");
    spec.avg_interval = (spec.avg_interval / 8.0).max(2.0);
    spec.working_set_bytes = spec.working_set_bytes.min(32 << 20);
    Experiment::with_spec(spec, policy)
        .warmup(80_000)
        .instructions(150_000)
        .seed(seed)
        .configure(|c| {
            c.l1.size_bytes = 4 << 10;
            c.l2.size_bytes = 16 << 10;
            c.llc.size_bytes = 64 << 10;
            c.mem.sample_period = Duration::from_us(10);
        })
}

/// The additivity guarantee, end to end: a controller with the fault
/// layer disabled (the default) and one with it enabled but every
/// fault knob at zero — no endurance variation, no stuck-at blocks, no
/// transient failures — produce bit-identical metrics rows, because a
/// zero-knob fault layer can never fail a verify.
#[test]
fn zero_knob_fault_layer_is_bit_identical_to_disabled() {
    for (w, policy) in [
        ("stream", WritePolicy::norm()),
        ("gups", WritePolicy::be_mellow_sc()),
        ("lbm", WritePolicy::b_mellow_sc().with_wear_quota()),
    ] {
        let disabled = scaled(w, policy, 11).run();
        let enabled = scaled(w, policy, 11)
            .configure(|c| c.mem.fault.enabled = true)
            .run();
        assert_eq!(
            disabled.to_json().to_string(),
            enabled.to_json().to_string(),
            "{w}: zero-knob fault layer perturbed the run"
        );
    }
}

/// One chaos case: a controller at a seed-derived fault operating
/// point, fed a seed-derived request stream, then drained and audited.
struct ChaosCase {
    seed: u64,
    cfg: MemConfig,
    policy: WritePolicy,
    endurance: EnduranceModel,
}

impl ChaosCase {
    fn new(seed: u64) -> ChaosCase {
        let mut knobs = DetRng::seed_from(seed).derive(0xC_4A_05);
        let mut cfg = MemConfig::paper_default();
        // 64 KiB over 4 banks: 256 blocks per bank, so stuck-at blocks
        // and wear-outs are actually hit by a short request stream.
        cfg.capacity_bytes = 1 << 16;
        cfg.num_banks = 4;
        cfg.num_ranks = 1;
        cfg.max_write_retries = [0, 1, 3][knobs.below(3) as usize];
        cfg.set_spares_per_bank([0, 1, 4][knobs.below(3) as usize]);
        cfg.fault.enabled = true;
        cfg.fault.endurance_sigma = [0.0, 0.25, 1.0][knobs.below(3) as usize];
        cfg.fault.transient_rate = [0.0, 0.02, 0.2, 0.8][knobs.below(4) as usize];
        cfg.fault.stuck_at_per_bank = [0, 1, 4, 16][knobs.below(4) as usize];
        cfg.fault.seed = seed;
        let policy = if knobs.chance(0.5) {
            WritePolicy::norm()
        } else {
            WritePolicy::be_mellow_sc()
        };
        // Some cases run on a near-dead part (4-write endurance) so
        // wear crossings, not just injected faults, drive failures.
        let endurance = if knobs.chance(0.25) {
            EnduranceModel::new(
                Duration::from_ns(150),
                4.0,
                ExpoFactor::new(2.0).expect("2.0 is in [1, 3]"),
            )
        } else {
            EnduranceModel::reram_default()
        };
        ChaosCase {
            seed,
            cfg,
            policy,
            endurance,
        }
    }

    /// Runs the case and returns the drained controller plus the debug
    /// fingerprint used by the determinism check.
    fn run(&self) -> (Controller, String) {
        let eager_ok = self.policy.base.uses_eager();
        let mut c = Controller::new(
            self.cfg.clone(),
            self.policy,
            self.endurance,
            CancelWear::Prorated,
        );
        let mut stream = DetRng::seed_from(self.seed).derive(0x5_72_EA);
        let lines = self.cfg.total_lines();
        // Offer a mixed stream over 4000 cycles, then drain.
        let mut cyc: u64 = 1;
        while cyc <= 4_000 {
            let now = SimTime::from_ps(cyc * MEM_CYCLE_PS);
            c.tick(now);
            match stream.below(16) {
                0..=4 => {
                    c.try_write(stream.below(lines), now);
                }
                5 | 6 => {
                    c.try_read(stream.below(lines), now);
                }
                7 if eager_ok && c.eager_has_room() => {
                    c.try_eager(stream.below(lines), now);
                }
                _ => {}
            }
            while c.pop_read_done().is_some() {}
            cyc += 1;
        }
        let drained = |c: &Controller| {
            let s = c.stats();
            s.demand_writes_accepted + s.eager_writes_accepted
                == s.writes_completed_normal
                    + s.writes_completed_slow
                    + c.fault_stats().uncorrectable
        };
        while !drained(&c) {
            assert!(
                cyc < 3_000_000,
                "seed {}: writes never drained: {:?} {:?}",
                self.seed,
                c.stats(),
                c.fault_stats()
            );
            c.tick(SimTime::from_ps(cyc * MEM_CYCLE_PS));
            while c.pop_read_done().is_some() {}
            cyc += 1;
        }
        let fingerprint = format!("{:?} {:?}", c.stats(), c.fault_stats());
        (c, fingerprint)
    }

    /// The fault-accounting invariants every case must satisfy.
    fn audit(&self, c: &Controller) {
        let seed = self.seed;
        let s = c.stats();
        let f = c.fault_stats();

        // Every verify failure resolves exactly one way.
        assert_eq!(
            f.verify_failures,
            f.retries + f.remaps + f.uncorrectable,
            "seed {seed}: failure resolution does not add up: {f:?}"
        );

        // Spares are never double-allocated and never refilled: each
        // remap consumed exactly one spare from the fixed pool.
        let total_spares = self.cfg.num_banks as u64 * self.cfg.spares_per_bank();
        assert_eq!(
            f.remaps + f.spares_remaining,
            total_spares,
            "seed {seed}: spare pool accounting broken: {f:?}"
        );

        // Retries are bounded by the configured budget: each completed,
        // remapped, or lost write chain consumed at most
        // `max_write_retries` of them.
        let chains =
            s.writes_completed_normal + s.writes_completed_slow + f.remaps + f.uncorrectable;
        assert!(
            f.retries <= self.cfg.max_write_retries as u64 * chains,
            "seed {seed}: retries {} exceed budget {} x {chains} chains",
            f.retries,
            self.cfg.max_write_retries
        );

        // No write is silently lost: the drain condition already forced
        // accepted == completed + uncorrectable. Data loss additionally
        // requires the *losing bank's* pool to be empty, which takes at
        // least one full pool's worth of remaps (pools are per bank, so
        // other banks may still hold spares).
        if f.uncorrectable > 0 && self.cfg.spares_per_bank() > 0 {
            assert!(
                f.remaps >= self.cfg.spares_per_bank(),
                "seed {seed}: data lost before any bank could exhaust its pool: {f:?}"
            );
        }

        // Capacity accounting sums to the total block space (each bank
        // has one extra physical block: Start-Gap's gap spare).
        let total_blocks = self.cfg.num_banks as u64 * (self.cfg.blocks_per_bank() + 1);
        let lost = c.lost_blocks();
        assert!(lost <= total_blocks, "seed {seed}: lost {lost} blocks");
        let expect = 1.0 - lost as f64 / total_blocks as f64;
        assert!(
            (c.usable_capacity_fraction() - expect).abs() < 1e-12,
            "seed {seed}: usable fraction {} != {expect}",
            c.usable_capacity_fraction()
        );
        if f.uncorrectable == 0 {
            assert_eq!(lost, 0, "seed {seed}: blocks lost without data loss");
        } else {
            assert!(lost > 0, "seed {seed}: data lost but no block marked");
        }
    }
}

/// 72 seeded cases across the fault-knob grid (stuck-at × transient ×
/// sigma × retry budget × spare pool × policy × endurance), each
/// audited against the accounting invariants.
#[test]
fn chaos_cases_satisfy_fault_invariants() {
    let mut failures_seen = 0u64;
    let mut losses_seen = 0u64;
    for seed in 0..72 {
        let case = ChaosCase::new(seed);
        let (c, _) = case.run();
        case.audit(&c);
        failures_seen += c.fault_stats().verify_failures;
        losses_seen += c.fault_stats().uncorrectable;
    }
    // The grid must actually exercise the machinery, not vacuously pass.
    assert!(
        failures_seen > 100,
        "chaos grid too tame: {failures_seen} verify failures total"
    );
    assert!(
        losses_seen > 0,
        "chaos grid never exhausted a spare pool; losses untested"
    );
}

/// A chaos case replayed from the same seed is bit-identical — the
/// fault layer draws only from its own derived streams.
#[test]
fn chaos_cases_are_deterministic() {
    for seed in [3, 17, 41, 64] {
        let case = ChaosCase::new(seed);
        let (_, a) = case.run();
        let (_, b) = ChaosCase::new(seed).run();
        assert_eq!(a, b, "seed {seed} not reproducible");
    }
}
