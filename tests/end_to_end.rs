//! Cross-crate integration tests: whole-system behaviour of the Mellow
//! Writes mechanisms.
//!
//! These run on a scaled-down system (small caches, dense traffic,
//! shrunken sample periods) so every dynamic — LLC fills, writebacks,
//! eager writes, drains, quota periods — appears within a test-sized
//! window. The full-size configuration is exercised by the `figures`
//! bench harness.

use mellow_writes::core::WritePolicy;
use mellow_writes::engine::Duration;
use mellow_writes::sim::{Experiment, Metrics};
use mellow_writes::workloads::WorkloadSpec;

/// Builds the scaled-down experiment used throughout this file.
fn scaled(workload: &str, policy: WritePolicy, seed: u64) -> Experiment {
    let mut spec = WorkloadSpec::by_name(workload).expect("preset exists");
    spec.avg_interval = (spec.avg_interval / 8.0).max(2.0);
    spec.working_set_bytes = spec.working_set_bytes.min(32 << 20);
    Experiment::with_spec(spec, policy)
        .warmup(80_000)
        .instructions(150_000)
        .seed(seed)
        .configure(|c| {
            c.l1.size_bytes = 4 << 10;
            c.l2.size_bytes = 16 << 10;
            c.llc.size_bytes = 64 << 10;
            c.mem.sample_period = Duration::from_us(10);
        })
}

fn run(workload: &str, policy: WritePolicy) -> Metrics {
    scaled(workload, policy, 7).run()
}

#[test]
fn lifetime_ordering_slow_beats_mellow_beats_norm() {
    for w in ["stream", "GemsFDTD"] {
        let norm = run(w, WritePolicy::norm());
        let mellow = run(w, WritePolicy::be_mellow_sc());
        let slow = run(w, WritePolicy::slow());
        assert!(
            slow.lifetime_years > mellow.lifetime_years,
            "{w}: all-slow must out-live mellow ({} vs {})",
            slow.lifetime_years,
            mellow.lifetime_years
        );
        assert!(
            mellow.lifetime_years > norm.lifetime_years,
            "{w}: mellow must out-live norm ({} vs {})",
            mellow.lifetime_years,
            norm.lifetime_years
        );
    }
}

#[test]
fn performance_ordering_norm_beats_slow() {
    for w in ["stream", "lbm"] {
        let norm = run(w, WritePolicy::norm());
        let slow = run(w, WritePolicy::slow());
        assert!(
            norm.ipc >= slow.ipc,
            "{w}: slow writes must not speed the system up ({} vs {})",
            norm.ipc,
            slow.ipc
        );
    }
}

#[test]
fn mellow_ipc_stays_close_to_norm() {
    // The paper's headline: Mellow Writes preserves performance. Allow a
    // modest band on the scaled system.
    let norm = run("GemsFDTD", WritePolicy::norm());
    let mellow = run("GemsFDTD", WritePolicy::be_mellow_sc());
    assert!(
        mellow.ipc > norm.ipc * 0.9,
        "mellow IPC {} too far below norm {}",
        mellow.ipc,
        norm.ipc
    );
}

#[test]
fn no_write_is_lost_between_llc_and_memory() {
    // Conservation: every writeback the LLC emitted was accepted by the
    // controller (demand or eager), modulo what is still queued inside
    // the simulated window.
    let m = run("lbm", WritePolicy::be_mellow_sc());
    let emitted = m.llc.writebacks_out + m.llc.eager_issued;
    let accepted = m.ctrl.demand_writes_accepted + m.ctrl.eager_writes_accepted;
    // Acceptance can exceed emission slightly (in-flight at the
    // measurement boundary) but must never lag by more than the queue
    // depths (32 write + 16 eager + hierarchy buffers).
    assert!(
        accepted + 64 >= emitted,
        "writes lost: emitted {emitted}, accepted {accepted}"
    );
}

#[test]
fn completed_writes_match_wear_ledger() {
    let m = run("stream", WritePolicy::be_mellow_sc());
    let ledger_total: u64 = m.bank_wear.iter().map(|b| b.completed_writes()).sum();
    let ctrl_total = m.ctrl.writes_completed_normal + m.ctrl.writes_completed_slow;
    assert_eq!(ledger_total, ctrl_total);
}

#[test]
fn eager_writes_only_under_eager_policies() {
    let b = run("stream", WritePolicy::b_mellow_sc());
    assert_eq!(b.ctrl.eager_writes_accepted, 0);
    assert_eq!(b.llc.eager_issued, 0);

    let be = run("stream", WritePolicy::be_mellow_sc());
    assert!(be.ctrl.eager_writes_accepted > 0, "{:?}", be.llc);
}

#[test]
fn wear_quota_restricts_hot_workloads() {
    // On the scaled system the quota budget is tiny, so a write-heavy
    // workload must spend most periods restricted -> mostly slow writes.
    let no_wq = run("lbm", WritePolicy::norm());
    let wq = run("lbm", WritePolicy::norm().with_wear_quota());
    assert!(no_wq.slow_write_fraction == 0.0);
    assert!(
        wq.slow_write_fraction > 0.3,
        "quota should force slow writes, got {}",
        wq.slow_write_fraction
    );
    assert!(wq.lifetime_years > no_wq.lifetime_years);
}

#[test]
fn wear_quota_costs_some_performance() {
    let no_wq = run("lbm", WritePolicy::norm());
    let wq = run("lbm", WritePolicy::norm().with_wear_quota());
    assert!(
        wq.ipc <= no_wq.ipc * 1.001,
        "the quota cannot speed things up: {} vs {}",
        wq.ipc,
        no_wq.ipc
    );
}

#[test]
fn cancellation_trades_wear_for_read_latency() {
    let plain = run("milc", WritePolicy::slow());
    let sc = run("milc", WritePolicy::slow().with_cancel_slow());
    assert_eq!(plain.ctrl.writes_cancelled, 0);
    assert!(sc.ctrl.writes_cancelled > 0, "{:?}", sc.ctrl);
    // Cancellation wears the array more (multiple attempts).
    assert!(sc.total_wear >= plain.total_wear);
    // ...and buys read latency back.
    assert!(sc.ctrl.read_latency_ns.mean() <= plain.ctrl.read_latency_ns.mean());
}

#[test]
fn write_pausing_saves_wear_over_cancellation() {
    // +WP extension: pausing never wastes a driven pulse, so for the
    // same policy it must not wear more than abort-style cancellation,
    // and it records pauses instead of cancels.
    let cancel = run("milc", WritePolicy::be_mellow_sc());
    let pause = run("milc", WritePolicy::be_mellow_sc().with_write_pausing());
    assert!(pause.ctrl.writes_paused > 0, "{:?}", pause.ctrl);
    assert_eq!(pause.ctrl.writes_cancelled, 0);
    assert!(
        pause.total_wear <= cancel.total_wear * 1.001,
        "pausing wears more: {} vs {}",
        pause.total_wear,
        cancel.total_wear
    );
    assert!(pause.lifetime_years >= cancel.lifetime_years * 0.999);
}

#[test]
fn graded_latency_dominates_two_level_under_pressure() {
    // +GR extension: under heavy write pressure (scaled lbm), grading
    // keeps more performance than the two-level scheme while still
    // beating Norm's lifetime.
    let norm = run("lbm", WritePolicy::norm());
    let two_level = run("lbm", WritePolicy::be_mellow_sc());
    let graded = run("lbm", WritePolicy::be_mellow_sc().with_graded_latency());
    assert!(
        graded.ipc >= two_level.ipc * 0.999,
        "grading should not lose IPC: {} vs {}",
        graded.ipc,
        two_level.ipc
    );
    assert!(
        graded.lifetime_years > norm.lifetime_years,
        "graded still extends lifetime: {} vs {}",
        graded.lifetime_years,
        norm.lifetime_years
    );
}

#[test]
fn determinism_across_identical_runs() {
    let a = run("gups", WritePolicy::be_mellow_sc().with_wear_quota());
    let b = run("gups", WritePolicy::be_mellow_sc().with_wear_quota());
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.total_wear, b.total_wear);
    assert_eq!(a.ctrl, b.ctrl);
    assert_eq!(a.llc, b.llc);
}

#[test]
fn different_seeds_differ() {
    let a = scaled("gups", WritePolicy::norm(), 1).run();
    let b = scaled("gups", WritePolicy::norm(), 2).run();
    assert_ne!(a.total_wear, b.total_wear);
}

#[test]
fn bank_count_sweep_shrinks_mellow_benefit() {
    // Fig. 18's trend: fewer banks -> less idle bank time -> smaller
    // lifetime advantage for Mellow Writes.
    let gain = |banks: usize, ranks: usize| {
        let cfg = move |c: &mut mellow_writes::sim::SystemConfig| {
            c.mem = c.mem.clone().with_banks(banks, ranks);
        };
        let norm = scaled("GemsFDTD", WritePolicy::norm(), 7)
            .configure(cfg)
            .run();
        let mellow = scaled("GemsFDTD", WritePolicy::be_mellow_sc(), 7)
            .configure(cfg)
            .run();
        mellow.lifetime_years / norm.lifetime_years
    };
    let wide = gain(16, 4);
    let narrow = gain(4, 1);
    assert!(
        wide > narrow,
        "16-bank gain {wide} should exceed 4-bank gain {narrow}"
    );
}

#[test]
fn all_policies_run_all_workloads_scaled() {
    // Smoke coverage of the full (policy x workload) space at tiny scale.
    for w in WorkloadSpec::names() {
        for p in [
            WritePolicy::norm(),
            WritePolicy::e_norm_nc(),
            WritePolicy::e_slow_sc(),
            WritePolicy::be_mellow_sc().with_wear_quota(),
        ] {
            let mut spec = WorkloadSpec::by_name(&w).unwrap();
            spec.avg_interval = (spec.avg_interval / 8.0).max(2.0);
            spec.working_set_bytes = spec.working_set_bytes.min(16 << 20);
            let m = Experiment::with_spec(spec, p)
                .warmup(30_000)
                .instructions(50_000)
                .configure(|c| {
                    c.l1.size_bytes = 4 << 10;
                    c.l2.size_bytes = 16 << 10;
                    c.llc.size_bytes = 64 << 10;
                    c.mem.sample_period = Duration::from_us(10);
                })
                .run();
            assert!(m.ipc > 0.0, "{w}/{p}: no progress");
            assert!(m.instructions >= 50_000);
        }
    }
}

#[test]
fn indexed_and_scan_queue_paths_produce_identical_metrics() {
    // The controller's indexed per-bank queues must be a pure
    // performance optimization: on every Table IV workload, a full
    // system run produces a bit-identical metrics row to the legacy
    // shared-FIFO scan layout (`MemConfig::use_scan_queues`).
    for w in WorkloadSpec::names() {
        let row = |scan: bool| {
            let mut spec = WorkloadSpec::by_name(&w).unwrap();
            spec.avg_interval = (spec.avg_interval / 8.0).max(2.0);
            spec.working_set_bytes = spec.working_set_bytes.min(16 << 20);
            Experiment::with_spec(spec, WritePolicy::be_mellow_sc().with_wear_quota())
                .warmup(30_000)
                .instructions(50_000)
                .configure(move |c| {
                    c.l1.size_bytes = 4 << 10;
                    c.l2.size_bytes = 16 << 10;
                    c.llc.size_bytes = 64 << 10;
                    c.mem.sample_period = Duration::from_us(10);
                    c.mem.use_scan_queues = scan;
                })
                .run()
                .to_json()
                .to_string()
        };
        assert_eq!(row(true), row(false), "{w}: queue layouts diverge");
    }
}

#[test]
fn cycle_and_fast_forward_loops_produce_identical_metrics() {
    // The event-queue kernel (the default loop) must be a pure
    // performance optimization: on every Table IV workload, a full
    // system run produces a bit-identical metrics row (stats, wear,
    // energy, IPC) under all three loops — the legacy one-cycle-at-a-
    // time oracle (`SystemConfig::use_cycle_loop`), the polling
    // fast-forward oracle (`SystemConfig::use_fast_forward`), and the
    // event kernel. The policy exercises every replayed per-cycle
    // effect at once: eager probing (RNG draws), wear-quota periods,
    // slow writes, and cancellation.
    for w in WorkloadSpec::names() {
        let row = |cycle_loop: bool, fast_forward: bool| {
            let mut spec = WorkloadSpec::by_name(&w).unwrap();
            spec.avg_interval = (spec.avg_interval / 8.0).max(2.0);
            spec.working_set_bytes = spec.working_set_bytes.min(16 << 20);
            Experiment::with_spec(spec, WritePolicy::be_mellow_sc().with_wear_quota())
                .warmup(30_000)
                .instructions(50_000)
                .configure(move |c| {
                    c.l1.size_bytes = 4 << 10;
                    c.l2.size_bytes = 16 << 10;
                    c.llc.size_bytes = 64 << 10;
                    c.mem.sample_period = Duration::from_us(10);
                    c.use_cycle_loop = cycle_loop;
                    c.use_fast_forward = fast_forward;
                })
                .run()
                .to_json()
                .to_string()
        };
        let cycle = row(true, false);
        assert_eq!(cycle, row(false, true), "{w}: fast-forward diverges");
        assert_eq!(cycle, row(false, false), "{w}: event kernel diverges");
    }
}

#[test]
fn per_block_ground_truth_consistent_with_aggregate_model() {
    use mellow_writes::nvm::LifetimeModel;

    // A tiny memory (16 banks x 512 blocks) with fast Start-Gap rotation
    // and a random write-heavy workload, tracked per block.
    let mut spec = WorkloadSpec::by_name("gups").expect("preset exists");
    spec.avg_interval = 2.0;
    spec.working_set_bytes = 512 << 10;
    let experiment = Experiment::with_spec(spec, WritePolicy::norm())
        .warmup(60_000)
        .instructions(250_000)
        .configure(|c| {
            c.l1.size_bytes = 2 << 10;
            c.l2.size_bytes = 4 << 10;
            c.llc.size_bytes = 8 << 10;
            c.mem.capacity_bytes = 512 << 10;
            c.mem.set_startgap_interval(4);
            c.track_block_wear = true;
        });
    let mut system = experiment.build();
    system.run_instructions(300_000);

    let ctrl = system.controller();
    let ledger = ctrl.ledger();
    let table = ledger.block_table().expect("tracking enabled");
    assert!(ledger.total_wear() > 100.0, "need meaningful traffic");

    // Bookkeeping consistency: the per-block table accounts for exactly
    // the wear the per-bank aggregates hold.
    let block_sum: f64 = (0..ctrl.config().num_banks)
        .map(|bank| {
            (0..table.blocks_per_bank())
                .map(|b| table.get(bank, b))
                .sum::<f64>()
        })
        .sum();
    assert!(
        (block_sum - ledger.total_wear()).abs() < 1e-6 * ledger.total_wear().max(1.0),
        "block table {block_sum} != aggregate {}",
        ledger.total_wear()
    );

    // Ground truth (most-worn block) can never out-live the ideally
    // leveled projection, and with Start-Gap running it lands within a
    // reasonable band of it.
    let elapsed = system.now().since_origin();
    let ideal = LifetimeModel::new(5e6, ctrl.config().blocks_per_bank(), 1.0);
    let ideal_years = ideal.project(ledger, elapsed).min_years;
    let ground_years = ideal.project_from_blocks(ledger, elapsed).unwrap();
    assert!(
        ground_years <= ideal_years * 1.0001,
        "max-wear block cannot beat the leveled ideal: {ground_years} vs {ideal_years}"
    );
    assert!(
        ground_years > ideal_years * 0.05,
        "Start-Gap should prevent pathological hot blocks: {ground_years} vs {ideal_years}"
    );
}
