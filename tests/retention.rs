//! Retention-layer integration tests: the additivity guarantee
//! (retention disabled ⇒ bit-identical results, across all three tick
//! loops), loop-equivalence with the scrubber enabled, and a seeded
//! chaos suite driving the controller through drift expirations,
//! scrub/demand detections, and failing repair rewrites at many
//! operating points while checking the retention-accounting invariants.

use mellow_writes::core::WritePolicy;
use mellow_writes::engine::{DetRng, Duration, SimTime};
use mellow_writes::memctrl::{Controller, MemConfig, ScrubPriority};
use mellow_writes::nvm::{CancelWear, EnduranceModel, ExpoFactor, SaturatingMerge};
use mellow_writes::sim::Experiment;
use mellow_writes::workloads::WorkloadSpec;

const MEM_CYCLE_PS: u64 = 2500;

/// The scaled-down experiment used by the additivity checks (mirrors
/// `tests/faults.rs` and `tests/end_to_end.rs`).
fn scaled(workload: &str, policy: WritePolicy, seed: u64) -> Experiment {
    let mut spec = WorkloadSpec::by_name(workload).expect("preset exists");
    spec.avg_interval = (spec.avg_interval / 8.0).max(2.0);
    spec.working_set_bytes = spec.working_set_bytes.min(32 << 20);
    Experiment::with_spec(spec, policy)
        .warmup(80_000)
        .instructions(150_000)
        .seed(seed)
        .configure(|c| {
            c.l1.size_bytes = 4 << 10;
            c.l2.size_bytes = 16 << 10;
            c.llc.size_bytes = 64 << 10;
            c.mem.sample_period = Duration::from_us(10);
        })
}

/// Applies one of the three tick-loop modes to an experiment.
fn with_loop(e: Experiment, mode: usize) -> Experiment {
    e.configure(move |c| match mode {
        0 => {} // event kernel (the default)
        1 => c.use_cycle_loop = true,
        _ => c.use_fast_forward = true,
    })
}

/// The additivity guarantee, end to end and across every tick loop: a
/// run with the retention layer disabled (the default) and one with it
/// enabled but every drift knob at zero — no base retention, no
/// scrubbing — produce bit-identical metrics rows, because a zero-knob
/// drift clock stamps nothing and a zero-interval scrubber never runs.
#[test]
fn zero_knob_retention_layer_is_bit_identical_to_disabled() {
    for (w, policy) in [
        ("stream", WritePolicy::norm()),
        ("gups", WritePolicy::be_mellow_sc()),
        ("lbm", WritePolicy::b_mellow_sc().with_wear_quota()),
    ] {
        for mode in 0..3 {
            let disabled = with_loop(scaled(w, policy, 11), mode).run();
            let enabled = with_loop(scaled(w, policy, 11), mode)
                .configure(|c| {
                    c.mem.retention.enabled = true;
                    c.mem.retention.base_retention = Duration::ZERO;
                    c.mem.retention.seed = 77;
                    c.mem.scrub_interval = Duration::ZERO;
                })
                .run();
            assert_eq!(
                disabled.to_json().to_string(),
                enabled.to_json().to_string(),
                "{w} loop {mode}: zero-knob retention layer perturbed the run"
            );
        }
    }
}

/// With the drift clock and the scrubber fully enabled, the three tick
/// loops still agree bit-for-bit: scrub wake-ups and repair backoff
/// releases ride `next_event` exactly, so the event kernel never
/// sleeps through a visit the cycle loop would have made.
#[test]
fn enabled_scrubber_is_loop_equivalent() {
    let mk = |mode| {
        with_loop(scaled("gups", WritePolicy::be_mellow_sc(), 23), mode)
            .configure(|c| {
                c.mem.retention.enabled = true;
                c.mem.retention.base_retention = Duration::from_us(20);
                c.mem.retention.drift_sigma = 0.3;
                c.mem.retention.slow_write_boost = 1.0;
                c.mem.retention.wear_sensitivity = 1.0;
                c.mem.retention.seed = 0xD21F;
                c.mem.scrub_interval = Duration::from_us(2);
                c.mem.fault.enabled = true;
                c.mem.fault.transient_rate = 0.05;
            })
            .run()
    };
    let event = mk(0);
    // The run must exercise the machinery, not vacuously agree.
    assert!(event.scrub.scrub_reads > 0, "scrubber never ran");
    assert!(
        event.retention.demand_verify_failures + event.scrub.scrub_rewrites > 0,
        "no drift failure was ever detected"
    );
    let cycle = mk(1);
    let fast = mk(2);
    assert_eq!(
        event.to_json().to_string(),
        cycle.to_json().to_string(),
        "event kernel and cycle loop disagree with the scrubber on"
    );
    assert_eq!(
        event.to_json().to_string(),
        fast.to_json().to_string(),
        "event kernel and fast-forward loop disagree with the scrubber on"
    );
}

/// One chaos case: a controller at a seed-derived retention + fault
/// operating point, fed a seed-derived request stream, then drained
/// and audited.
struct ChaosCase {
    seed: u64,
    cfg: MemConfig,
    policy: WritePolicy,
    endurance: EnduranceModel,
}

impl ChaosCase {
    fn new(seed: u64) -> ChaosCase {
        let mut knobs = DetRng::seed_from(seed).derive(0x4E7_E27);
        let mut cfg = MemConfig::paper_default();
        // 64 KiB over 4 banks: 256 blocks per bank, so a short request
        // stream revisits blocks and the scrubber sweeps a full bank in
        // 256 intervals.
        cfg.capacity_bytes = 1 << 16;
        cfg.num_banks = 4;
        cfg.num_ranks = 1;
        cfg.max_write_retries = [0, 1, 3][knobs.below(3) as usize];
        cfg.set_spares_per_bank([0, 1, 4][knobs.below(3) as usize]);
        cfg.retention.enabled = true;
        cfg.retention.base_retention = Duration::from_us([2, 10, 50][knobs.below(3) as usize]);
        cfg.retention.drift_sigma = [0.0, 0.3, 1.0][knobs.below(3) as usize];
        cfg.retention.slow_write_boost = [0.0, 1.0, 2.0][knobs.below(3) as usize];
        cfg.retention.wear_sensitivity = [0.0, 2.0][knobs.below(2) as usize];
        cfg.retention.seed = seed;
        // Interval 0 turns the scrubber off: those cases exercise the
        // demand-read detection path alone.
        cfg.scrub_interval = Duration::from_ns([0, 1_000, 5_000][knobs.below(3) as usize]);
        cfg.scrub_priority = if knobs.chance(0.5) {
            ScrubPriority::EagerFirst
        } else {
            ScrubPriority::ScrubFirst
        };
        cfg.repair_backoff = Duration::from_ns([0, 20, 100][knobs.below(3) as usize]);
        // The fault layer supplies the failing-repair substrate: without
        // it a repair rewrite can never fail verify.
        cfg.fault.enabled = true;
        cfg.fault.endurance_sigma = [0.0, 0.25][knobs.below(2) as usize];
        cfg.fault.transient_rate = [0.0, 0.02, 0.2][knobs.below(3) as usize];
        cfg.fault.stuck_at_per_bank = [0, 2][knobs.below(2) as usize];
        cfg.fault.seed = seed;
        let policy = if knobs.chance(0.5) {
            WritePolicy::norm()
        } else {
            WritePolicy::be_mellow_sc()
        };
        // Some cases run on a near-dead part (4-write endurance) so
        // repair rewrites hit wear-outs, walk the remap path, and
        // exhaust spare pools into retention-uncorrectable losses.
        let endurance = if knobs.chance(0.25) {
            EnduranceModel::new(
                Duration::from_ns(150),
                4.0,
                ExpoFactor::new(2.0).expect("2.0 is in [1, 3]"),
            )
        } else {
            EnduranceModel::reram_default()
        };
        ChaosCase {
            seed,
            cfg,
            policy,
            endurance,
        }
    }

    /// Runs the case and returns the drained controller plus the debug
    /// fingerprint used by the determinism check.
    fn run(&self) -> (Controller, String) {
        let eager_ok = self.policy.base.uses_eager();
        let mut c = Controller::new(
            self.cfg.clone(),
            self.policy,
            self.endurance,
            CancelWear::Prorated,
        );
        let mut stream = DetRng::seed_from(self.seed).derive(0x5_72_EA);
        let lines = self.cfg.total_lines();
        // Offer a mixed stream over 4000 cycles, then drain.
        let mut cyc: u64 = 1;
        while cyc <= 4_000 {
            let now = SimTime::from_ps(cyc * MEM_CYCLE_PS);
            c.tick(now);
            match stream.below(16) {
                0..=4 => {
                    c.try_write(stream.below(lines), now);
                }
                5 | 6 => {
                    c.try_read(stream.below(lines), now);
                }
                7 if eager_ok && c.eager_has_room() => {
                    c.try_eager(stream.below(lines), now);
                }
                _ => {}
            }
            while c.pop_read_done().is_some() {}
            cyc += 1;
        }
        // Drain to a balanced instant: every accepted write and every
        // detected drift failure fully resolved. The scrubber keeps
        // re-detecting as blocks re-expire, so the equality is a
        // recurring quiescence window rather than a terminal state —
        // but it must keep recurring (no silent loss, no stuck repair).
        let drained = |c: &Controller| {
            let s = c.stats();
            let r = c.retention_stats();
            let sc = c.scrub_stats();
            s.demand_writes_accepted
                + s.eager_writes_accepted
                + r.demand_verify_failures
                + sc.scrub_rewrites
                == s.writes_completed_normal
                    + s.writes_completed_slow
                    + r.repairs
                    + c.fault_stats().uncorrectable
        };
        while !drained(&c) {
            assert!(
                cyc < 3_000_000,
                "seed {}: writes/repairs never drained: {:?} {:?} {:?} {:?}",
                self.seed,
                c.stats(),
                c.fault_stats(),
                c.retention_stats(),
                c.scrub_stats()
            );
            c.tick(SimTime::from_ps(cyc * MEM_CYCLE_PS));
            while c.pop_read_done().is_some() {}
            cyc += 1;
        }
        let fingerprint = format!(
            "{:?} {:?} {:?} {:?}",
            c.stats(),
            c.fault_stats(),
            c.retention_stats(),
            c.scrub_stats()
        );
        (c, fingerprint)
    }

    /// The retention- and fault-accounting invariants every case must
    /// satisfy at the drained instant.
    fn audit(&self, c: &Controller) {
        let seed = self.seed;
        let s = c.stats();
        let f = c.fault_stats();
        let r = c.retention_stats();
        let sc = c.scrub_stats();

        // Every detected drift failure resolves exactly one way:
        // repaired, or lost through the spare-exhausted remap path.
        assert_eq!(
            r.demand_verify_failures + sc.scrub_rewrites,
            r.repairs + r.retention_uncorrectable,
            "seed {seed}: detection resolution does not add up: {r:?} {sc:?}"
        );

        // A retention loss is a fault-layer loss (same drop path), and
        // with the scrubber off every detection came from a demand read.
        assert!(
            r.retention_uncorrectable <= f.uncorrectable,
            "seed {seed}: retention losses exceed total losses: {r:?} {f:?}"
        );
        if self.cfg.scrub_interval == Duration::ZERO {
            assert_eq!(sc.scrub_reads, 0, "seed {seed}: disabled scrubber ran");
            assert_eq!(sc.scrub_rewrites, 0, "seed {seed}: disabled scrubber ran");
        }

        // Every verify failure resolves exactly one way (unchanged from
        // the fault suite: repair rewrites participate uniformly).
        assert_eq!(
            f.verify_failures,
            f.retries + f.remaps + f.uncorrectable,
            "seed {seed}: failure resolution does not add up: {f:?}"
        );

        // Spares are never double-allocated and never refilled.
        let total_spares = self.cfg.num_banks as u64 * self.cfg.spares_per_bank();
        assert_eq!(
            f.remaps + f.spares_remaining,
            total_spares,
            "seed {seed}: spare pool accounting broken: {f:?}"
        );

        // Retries are bounded by the configured budget; repair chains
        // consume from the same budget as write chains.
        let chains = s.writes_completed_normal
            + s.writes_completed_slow
            + r.repairs
            + f.remaps
            + f.uncorrectable;
        assert!(
            f.retries <= self.cfg.max_write_retries as u64 * chains,
            "seed {seed}: retries {} exceed budget {} x {chains} chains",
            f.retries,
            self.cfg.max_write_retries
        );

        // Capacity accounting sums to the total block space (each bank
        // has one extra physical block: Start-Gap's gap spare).
        let total_blocks = self.cfg.num_banks as u64 * (self.cfg.blocks_per_bank() + 1);
        let lost = c.lost_blocks();
        assert!(lost <= total_blocks, "seed {seed}: lost {lost} blocks");
        let expect = 1.0 - lost as f64 / total_blocks as f64;
        assert!(
            (c.usable_capacity_fraction() - expect).abs() < 1e-12,
            "seed {seed}: usable fraction {} != {expect}",
            c.usable_capacity_fraction()
        );
        // Degradation is loud: losses always surface as marked blocks
        // and shrunken capacity, never silently.
        if f.uncorrectable == 0 {
            assert_eq!(lost, 0, "seed {seed}: blocks lost without data loss");
        } else {
            assert!(lost > 0, "seed {seed}: data lost but no block marked");
        }
    }
}

/// 72 seeded cases across the retention-knob grid (drift rate × sigma ×
/// slow-write boost × wear coupling × scrub interval × priority ×
/// backoff × the fault grid), each audited against the accounting
/// invariants, with aggregate non-vacuity checks folded through the
/// shared saturating-merge helper.
#[test]
fn chaos_cases_satisfy_retention_invariants() {
    let mut totals = mellow_writes::memctrl::RetentionStats::default();
    let mut scrub_totals = mellow_writes::memctrl::ScrubStats::default();
    for seed in 0..72 {
        let case = ChaosCase::new(seed);
        let (c, _) = case.run();
        case.audit(&c);
        totals.saturating_merge(c.retention_stats());
        scrub_totals.saturating_merge(c.scrub_stats());
    }
    // The grid must exercise every arm of the machinery, not vacuously
    // pass: both detection paths, successful repairs, repair failures
    // all the way to capacity loss, and scrub arbitration pressure.
    assert!(
        totals.demand_verify_failures > 50,
        "chaos grid too tame: {totals:?}"
    );
    assert!(
        scrub_totals.scrub_rewrites > 25,
        "chaos grid too tame: {scrub_totals:?}"
    );
    assert!(totals.repairs > 100, "chaos grid too tame: {totals:?}");
    assert!(
        totals.retention_uncorrectable > 0,
        "chaos grid never lost a repair; the degradation path is untested"
    );
    assert!(
        scrub_totals.scrub_bank_conflicts > 0,
        "chaos grid never contended an idle-bank window"
    );
}

/// A chaos case replayed from the same seed is bit-identical — drift
/// deadlines draw only from their own derived streams.
#[test]
fn chaos_cases_are_deterministic() {
    for seed in [5, 19, 43, 66] {
        let case = ChaosCase::new(seed);
        let (_, a) = case.run();
        let (_, b) = ChaosCase::new(seed).run();
        assert_eq!(a, b, "seed {seed} not reproducible");
    }
}
