//! # Mellow Writes
//!
//! A production-quality Rust reproduction of *“Mellow Writes: Extending
//! Lifetime in Resistive Memories through Selective Slow Write Backs”*
//! (ISCA 2016).
//!
//! Resistive memories (ReRAM, PCM) endure only a limited number of
//! writes, but a write driven slowly at lower power wears the cell far
//! less: slowing a write by *N*× multiplies endurance by roughly
//! *N²* (Eq. 2 of the paper). Mellow Writes exploits idle memory-bank
//! time to issue *slow* writes exactly when they will not hurt
//! performance:
//!
//! - **Bank-Aware Mellow Writes** — a write issues slow iff it is the
//!   only request queued for its bank.
//! - **Eager Mellow Writes** — the LLC profiles LRU-stack-position hit
//!   rates, eagerly and slowly writing back dirty lines that will not be
//!   reused, through a lowest-priority queue targeting idle banks.
//! - **Wear Quota** — a per-bank, per-period wear budget that forces
//!   slow writes when a workload would otherwise burn through the
//!   memory's lifetime (guaranteeing e.g. 8 years).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `mellow-core` | the policies (Table III), Figure 9 decision tree, Wear Quota, utility monitor |
//! | [`nvm`] | `mellow-nvm` | endurance model (Eq. 2), wear ledger, Start-Gap, energy model (Tables V/VI), lifetime projection |
//! | [`memctrl`] | `mellow-memctrl` | the cycle-level ReRAM memory controller |
//! | [`cache`] | `mellow-cache` | the three-level hierarchy with the LLC eager machinery |
//! | [`cpu`] | `mellow-cpu` | the trace-driven out-of-order core model |
//! | [`workloads`] | `mellow-workloads` | Table IV synthetic benchmark generators |
//! | [`sim`] | `mellow-sim` | the wired full system and experiment runner |
//! | [`engine`] | `mellow-engine` | simulation time, queues, statistics |
//! | [`bench`] | `mellow-bench` | parallel cached sweeps ([`bench::Sweep`]) and the figure generators |
//!
//! # Quickstart
//!
//! ```no_run
//! use mellow_writes::core::WritePolicy;
//! use mellow_writes::sim::Experiment;
//!
//! // Evaluate the paper's headline configuration on the stream kernel.
//! let metrics = Experiment::try_new("stream", WritePolicy::be_mellow_sc().with_wear_quota())
//!     .expect("a Table IV workload name")
//!     .instructions(1_000_000)
//!     .run();
//! println!("{}", metrics.summary());
//! assert!(metrics.lifetime_years > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness regenerating every table and figure of the paper.

pub use mellow_bench as bench;
pub use mellow_cache as cache;
pub use mellow_core as core;
pub use mellow_cpu as cpu;
pub use mellow_engine as engine;
pub use mellow_memctrl as memctrl;
pub use mellow_nvm as nvm;
pub use mellow_sim as sim;
pub use mellow_workloads as workloads;

/// The crate version, matching the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
