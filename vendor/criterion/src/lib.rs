//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API subset the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`], the
//! [`Bencher::iter`] timing loop, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a plain wall-clock measurement
//! loop instead of criterion's statistical machinery. Each benchmark
//! prints `name: <mean> ns/iter (n iterations)` to stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization
/// barrier.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Hands the measured closure to the timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    /// Iterations measured.
    iterations: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count that fits the
    /// measurement budget, then measuring one contiguous batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: double the batch until it costs at
        // least ~1/10 of the budget.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget / 10 || batch >= 1 << 24 {
                break elapsed.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        // Measurement: as many batches as fit the remaining budget.
        // Cap after raising to the calibrated batch: for sub-ns bodies
        // the batch itself can exceed the cap, and `clamp` would panic
        // on min > max.
        let iters = ((self.budget.as_secs_f64() / per_iter.max(1e-12)) as u64)
            .max(batch)
            .min(10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
        self.iterations = iters;
    }
}

/// Entry point collecting benchmark registrations.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iterations: 0,
            budget: self.budget,
        };
        f(&mut b);
        println!(
            "{name}: {:.1} ns/iter ({} iterations)",
            b.mean_ns, b.iterations
        );
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes batches from
    /// its time budget instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main`, honoring the harness flags cargo passes: under
/// `cargo test` (`--test`) benchmarks are skipped so test runs stay
/// fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
            assert!(b.iterations > 0);
            assert!(b.mean_ns >= 0.0);
        });
        assert!(ran);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| 1u32));
        group.finish();
    }
}
