//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the small API surface the workspace actually uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling methods `random()` (for `u64`/`f64`/`bool`) and
//! `random_range(0..bound)` (for unsigned integers).
//!
//! The generator is xoshiro256++ with a SplitMix64 seed expander — the
//! same construction the real `SmallRng` uses on 64-bit targets — so
//! statistical quality is adequate for simulation. Sequences are *not*
//! guaranteed to match the real crate's output; the simulator only
//! relies on determinism for a fixed seed, which this provides.

/// Types that can produce raw 64-bit random output.
pub trait RngCore {
    /// Returns the next value of the generator's 64-bit output sequence.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution over a type's values, drawn from raw generator output.
pub trait StandardUniform: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection loop
                // terminates quickly for any span.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let x = rng.next_u64();
                    if x <= zone {
                        return self.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, u16, u8, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value of any [`StandardUniform`] type.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small-state generator used for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // An all-zero state is a fixed point of xoshiro; SplitMix64
            // cannot produce four zero outputs from any seed, so the
            // state is always valid.
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let collisions = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(0..17);
            assert!(x < 17);
        }
        // Small spans hit every value.
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
