//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the small API surface the workspace actually uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling methods `random()` (for `u64`/`f64`/`bool`) and
//! `random_range(0..bound)` (for unsigned integers).
//!
//! The generator is xoshiro256++ with a SplitMix64 seed expander — the
//! same construction the real `SmallRng` uses on 64-bit targets — so
//! statistical quality is adequate for simulation. Sequences are *not*
//! guaranteed to match the real crate's output; the simulator only
//! relies on determinism for a fixed seed, which this provides.

/// Types that can produce raw 64-bit random output.
pub trait RngCore {
    /// Returns the next value of the generator's 64-bit output sequence.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution over a type's values, drawn from raw generator output.
pub trait StandardUniform: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the rejection loop
                // terminates quickly for any span.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let x = rng.next_u64();
                    if x <= zone {
                        return self.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, u16, u8, usize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value of any [`StandardUniform`] type.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};
    use std::sync::OnceLock;

    /// xoshiro256++ — the small-state generator used for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// The xoshiro256++ state transition, separated from output mixing so
    /// [`SmallRng::discard`] can advance the stream without producing
    /// values.
    #[inline]
    fn step(s: &mut [u64; 4]) {
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
    }

    /// A 256x256 GF(2) matrix stored as 256 column vectors of the 256-bit
    /// state (bit `i` of the state lives at `col[i / 64] >> (i % 64)`).
    type JumpMatrix = [[u64; 4]; 256];

    /// Applies `m` to the state vector `s` over GF(2): the result is the
    /// XOR of the columns selected by the set bits of `s`.
    fn apply(m: &JumpMatrix, s: &[u64; 4]) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (i, col) in m.iter().enumerate() {
            if (s[i / 64] >> (i % 64)) & 1 == 1 {
                for (o, c) in out.iter_mut().zip(col) {
                    *o ^= c;
                }
            }
        }
        out
    }

    /// Precomputed powers `T^(2^k)` of the one-step transition matrix, so
    /// a jump of any `n` is the product of at most 64 matrix applications
    /// (one per set bit of `n`).
    fn jump_tables() -> &'static [JumpMatrix; 64] {
        static TABLES: OnceLock<Box<[JumpMatrix; 64]>> = OnceLock::new();
        TABLES.get_or_init(|| {
            let mut tables = vec![[[0u64; 4]; 256]; 64];
            // T itself: column i is the transition applied to basis
            // vector e_i (the transition is linear over GF(2) — only
            // XORs, shifts, and rotates touch the state).
            for i in 0..256 {
                let mut s = [0u64; 4];
                s[i / 64] = 1u64 << (i % 64);
                step(&mut s);
                tables[0][i] = s;
            }
            // T^(2^(k+1)) = T^(2^k) applied to each of its own columns.
            for k in 1..64 {
                let (prev, rest) = tables.split_at_mut(k);
                let src = &prev[k - 1];
                for (dst, col) in rest[0].iter_mut().zip(src.iter()) {
                    *dst = apply(src, col);
                }
            }
            let boxed: Box<[JumpMatrix; 64]> = match tables.into_boxed_slice().try_into() {
                Ok(b) => b,
                Err(_) => unreachable!("vec built with exactly 64 tables"),
            };
            boxed
        })
    }

    /// Below this count a sequential state walk is cheaper than the
    /// matrix jump (one matrix application is ~256 conditional 4-word
    /// XORs, a sequential step ~6 word ops).
    const SEQUENTIAL_JUMP_LIMIT: u64 = 4096;

    impl SmallRng {
        /// Advances the generator past the next `n` outputs in `O(log n)`
        /// without computing them, exactly as if [`RngCore::next_u64`]
        /// had been called `n` times and the results discarded.
        ///
        /// The xoshiro256++ state transition is linear over GF(2), so an
        /// `n`-step jump is a product of precomputed matrix powers
        /// `T^(2^k)`; small `n` just walks the transition directly.
        pub fn discard(&mut self, n: u64) {
            if n < SEQUENTIAL_JUMP_LIMIT {
                for _ in 0..n {
                    step(&mut self.s);
                }
                return;
            }
            let tables = jump_tables();
            let mut remaining = n;
            while remaining != 0 {
                let k = remaining.trailing_zeros();
                self.s = apply(&tables[k as usize], &self.s);
                remaining &= remaining - 1;
            }
        }
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // An all-zero state is a fixed point of xoshiro; SplitMix64
            // cannot produce four zero outputs from any seed, so the
            // state is always valid.
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            step(s);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let collisions = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn discard_matches_sequential_draws() {
        use super::RngCore;
        // Cover the sequential path, both sides of the threshold, and
        // multi-bit counts that exercise several jump tables.
        for &n in &[0u64, 1, 2, 63, 4095, 4096, 4097, 65_536, 1_000_000] {
            let mut jumped = SmallRng::seed_from_u64(0xFEED ^ n);
            let mut walked = jumped.clone();
            jumped.discard(n);
            for _ in 0..n.min(1_000_000) {
                walked.next_u64();
            }
            assert_eq!(jumped, walked, "discard({n}) diverged from {n} draws");
            // And the streams stay aligned afterwards.
            for _ in 0..8 {
                assert_eq!(jumped.next_u64(), walked.next_u64());
            }
        }
    }

    #[test]
    fn discard_composes() {
        let mut split = SmallRng::seed_from_u64(3);
        let mut whole = split.clone();
        split.discard(10_000);
        split.discard(123_456);
        whole.discard(133_456);
        assert_eq!(split, whole);
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(0..17);
            assert!(x < 17);
        }
        // Small spans hit every value.
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
