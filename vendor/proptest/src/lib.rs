//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset of proptest the workspace's property
//! tests use: range and `any::<bool>()` strategies, tuples, `prop_map`,
//! `collection::vec`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   panic message's case seed) but is not minimized.
//! - **Fixed case count** (256, overridable with `PROPTEST_CASES`).
//! - **`prop_assume!` passes** instead of re-drawing; assumptions in
//!   this workspace reject a negligible fraction of cases.
//!
//! Cases are generated from a seed derived deterministically from the
//! test name, so runs are reproducible across machines.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates a source from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Returns a uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.random_range(0..bound)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates a `Vec` of `element` values with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Number of cases per property (`PROPTEST_CASES` overrides).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Runs `case` [`case_count`] times with per-case deterministic seeds
/// derived from `name`, panicking on the first failure.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), String>) {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..case_count() {
        let case_seed = seed.wrapping_add(i as u64);
        let mut rng = TestRng::seed_from(case_seed);
        if let Err(msg) = case(&mut rng) {
            panic!("property {name} failed at case {i} (seed {case_seed:#x}): {msg}");
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`case_count`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// The macro wires strategies, assertions, and assumptions.
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.5f64..2.0, flip in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assume!(flip || x < 10);
            prop_assert_eq!(x, x);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in crate::collection::vec((0u8..3, 1.0f64..4.0), 0..20),
        ) {
            prop_assert!(v.len() < 20);
            for (b, f) in v {
                prop_assert!(b < 3);
                prop_assert!((1.0..4.0).contains(&f));
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1u64..5).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::seed_from(1);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases("det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
